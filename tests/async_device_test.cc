// Async multi-queue device API tests: queue-depth limits, per-channel
// overlap timing on the simulated device, SyncAdapter / AsyncShim
// round-trip equivalence with the legacy synchronous path, open-loop
// replay speedup with queue depth, and record -> replay determinism of
// submit/complete timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/device/async_device.h"
#include "src/device/async_sim_device.h"
#include "src/device/mem_device.h"
#include "src/device/profiles.h"
#include "src/flash/array.h"
#include "src/ftl/page_mapping_ftl.h"
#include "src/pattern/pattern.h"
#include "src/run/runner.h"
#include "src/run/trace_run.h"
#include "src/trace/recording_device.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

std::unique_ptr<MemDevice> Mem(double jitter = 0) {
  MemDeviceConfig cfg;
  cfg.capacity_bytes = 64ULL << 20;
  cfg.jitter_us = jitter;
  return std::make_unique<MemDevice>(cfg, std::make_shared<VirtualClock>());
}

/// A deterministic multi-channel simulated device: page-mapping FTL over
/// `channels` independent channels, controller costs kept small so the
/// flash time (the part that parallelizes) dominates. `controller_us` /
/// `pipelined` select the bounded-controller model (serialized
/// controller stage) instead of the default fully-pipelined one.
std::unique_ptr<SimDevice> ChanneledDevice(uint32_t channels,
                                           double controller_us = 0,
                                           bool pipelined = true) {
  ArrayConfig ac;
  ac.chip_geometry.page_data_bytes = 4096;
  ac.chip_geometry.pages_per_block = 32;
  ac.chip_geometry.blocks = 128;  // per channel
  ac.timing = FlashTiming::Slc();
  ac.channels = channels;
  PageMappingConfig pm;
  pm.mapping_unit_pages = 1;
  pm.overprovision = 0.2;
  pm.write_streams = 4;
  ControllerConfig cc;
  cc.read_overhead_us = 10.0;
  cc.write_overhead_us = 10.0;
  cc.bus_read_mb_s = 1000.0;
  cc.bus_write_mb_s = 1000.0;
  cc.gc_slice_us = 0.0;
  cc.controller_us = controller_us;
  cc.pipelined = pipelined;
  return std::make_unique<SimDevice>(
      "mc" + std::to_string(channels),
      std::make_unique<PageMappingFtl>(std::make_unique<FlashArray>(ac), pm),
      cc, std::make_shared<VirtualClock>());
}

/// Sequentially writes the first `bytes` of the device through the
/// async path (SyncAdapter), so the mapping is populated and striped.
void Prime(AsyncBlockDevice* dev, uint64_t bytes, uint32_t io_size = 4096) {
  SyncAdapter sync(dev);
  for (uint64_t off = 0; off + io_size <= bytes; off += io_size) {
    auto rt = sync.Submit(IoRequest{off, io_size, IoMode::kWrite});
    ASSERT_TRUE(rt.ok()) << rt.status();
  }
}

/// Offsets of `n` primed 4KB pages dispatched to pairwise distinct
/// channels (empty result fails the caller's ASSERT).
std::vector<uint64_t> DistinctChannelOffsets(const AsyncSimDevice& dev,
                                             uint64_t primed_bytes,
                                             uint32_t n) {
  std::vector<uint64_t> offsets;
  std::vector<bool> used(dev.channels(), false);
  for (uint64_t off = 0; off + 4096 <= primed_bytes && offsets.size() < n;
       off += 4096) {
    uint32_t ch = dev.DispatchChannelOf(IoRequest{off, 4096, IoMode::kRead});
    if (!used[ch]) {
      used[ch] = true;
      offsets.push_back(off);
    }
  }
  return offsets;
}

// ---------------------------------------------------------------------
// AsyncShim basics
// ---------------------------------------------------------------------

TEST(AsyncShimTest, ResolvesEagerlyInCompletionOrder) {
  auto mem = Mem();
  AsyncShim shim(mem.get(), 4);
  EXPECT_EQ(shim.queue_depth(), 4u);
  EXPECT_EQ(shim.capacity_bytes(), mem->capacity_bytes());

  std::vector<IoToken> tokens;
  for (int i = 0; i < 3; ++i) {
    auto tok = shim.Enqueue(0, IoRequest{uint64_t(i) * 32768, 32768,
                                         IoMode::kRead});
    ASSERT_TRUE(tok.ok()) << tok.status();
    tokens.push_back(*tok);
  }
  EXPECT_EQ(shim.pending(), 3u);
  auto done = shim.PollCompletions();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(shim.pending(), 0u);
  // The serializing inner device stacks the three IOs; completion
  // records come back in completion order with queue wait charged.
  // MemDevice 32KB read = 263.84us -> 263us whole.
  for (size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i].token, tokens[i]);
    EXPECT_EQ(done[i].submit_us, 0u);
    EXPECT_NEAR(done[i].rt_us, 263.84 + 263.0 * double(i), 2.0);
    if (i > 0) {
      EXPECT_GT(done[i].complete_us, done[i - 1].complete_us);
    }
  }
}

TEST(AsyncShimTest, DrainUntilSplitsByCompletionTime) {
  auto mem = Mem();
  AsyncShim shim(mem.get(), 8);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(shim.Enqueue(0, IoRequest{0, 32768, IoMode::kRead}).ok());
  }
  // First two complete by ~527us; the rest later.
  auto early = shim.DrainUntil(550);
  EXPECT_EQ(early.size(), 2u);
  EXPECT_EQ(shim.pending(), 2u);
  auto late = shim.DrainAll();
  EXPECT_EQ(late.size(), 2u);
  EXPECT_GT(late.front().complete_us, early.back().complete_us);
}

// ---------------------------------------------------------------------
// Round-trip equivalence with the legacy synchronous path
// ---------------------------------------------------------------------

TEST(SyncAdapterTest, ShimRoundTripMatchesDirectSubmit) {
  // SyncAdapter(AsyncShim(dev)) must reproduce dev's responses exactly,
  // IO for IO, including the Submit carry behaviour inherited from
  // BlockDevice.
  auto direct = Mem(25.0);
  auto inner = Mem(25.0);
  AsyncShim shim(inner.get(), 4);
  SyncAdapter sync(&shim);

  PatternSpec spec = PatternSpec::RandomWrite(4096, 0, 8 << 20);
  spec.io_count = 256;
  auto a = ExecuteRun(direct.get(), spec);
  auto b = ExecuteRun(&sync, spec);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->samples.size(), b->samples.size());
  for (size_t i = 0; i < a->samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->samples[i].rt_us, b->samples[i].rt_us) << "IO " << i;
    EXPECT_EQ(a->samples[i].submit_us, b->samples[i].submit_us) << "IO " << i;
  }
  EXPECT_EQ(direct->clock()->NowUs(), sync.clock()->NowUs());
}

TEST(SyncAdapterTest, AsyncSimRoundTripMatchesLegacySimExactly) {
  // The acceptance bar: SyncAdapter over the async SimDevice reproduces
  // the legacy synchronous response times microsecond-identically on a
  // fixed pattern, for single- and multi-channel devices and across FTL
  // architectures (profiles) -- queue depth > 1 included, because the
  // adapter serializes.
  for (const std::string& id : {std::string("mtron"),
                                std::string("kingston-dti")}) {
    auto legacy = MakeTestDevice(id, 16 << 20);
    AsyncSimDevice lifted(MakeTestDevice(id, 16 << 20), 8);
    SyncAdapter sync(&lifted);

    PatternSpec warm = PatternSpec::RandomWrite(32768, 0, 8 << 20);
    warm.io_count = 192;
    ASSERT_TRUE(ExecuteRun(legacy.get(), warm).ok());
    ASSERT_TRUE(ExecuteRun(&sync, warm).ok());

    for (PatternSpec spec : {PatternSpec::SequentialWrite(4096, 0, 4 << 20),
                             PatternSpec::RandomRead(32768, 0, 8 << 20)}) {
      spec.io_count = 128;
      auto a = ExecuteRun(legacy.get(), spec);
      auto b = ExecuteRun(&sync, spec);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      ASSERT_EQ(a->samples.size(), b->samples.size());
      for (size_t i = 0; i < a->samples.size(); ++i) {
        ASSERT_DOUBLE_EQ(a->samples[i].rt_us, b->samples[i].rt_us)
            << id << " " << spec.label << " IO " << i;
        ASSERT_EQ(a->samples[i].submit_us, b->samples[i].submit_us)
            << id << " " << spec.label << " IO " << i;
      }
    }
    EXPECT_EQ(legacy->clock()->NowUs(), sync.clock()->NowUs()) << id;
  }
}

TEST(SyncAdapterTest, MultiChannelSerializedSubmissionsStaySequential) {
  // Even on a multi-channel device, the sync contract serializes: the
  // adapter must match a legacy sync device built from the same parts.
  auto legacy = ChanneledDevice(4);
  AsyncSimDevice lifted(ChanneledDevice(4), 8);
  SyncAdapter sync(&lifted);
  PatternSpec spec = PatternSpec::SequentialWrite(4096, 0, 2 << 20);
  spec.io_count = 512;
  auto a = ExecuteRun(legacy.get(), spec);
  auto b = ExecuteRun(&sync, spec);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  for (size_t i = 0; i < a->samples.size(); ++i) {
    ASSERT_DOUBLE_EQ(a->samples[i].rt_us, b->samples[i].rt_us) << "IO " << i;
  }
}

// ---------------------------------------------------------------------
// Per-channel overlap and queue-depth limits on AsyncSimDevice
// ---------------------------------------------------------------------

/// Makespan of a same-instant burst of reads at `offsets` on a fresh
/// 4-channel device with the given queue depth and controller model.
uint64_t BurstMakespanUs(uint32_t queue_depth,
                         const std::vector<uint64_t>& offsets,
                         double controller_us = 0, bool pipelined = true) {
  AsyncSimDevice dev(ChanneledDevice(4, controller_us, pipelined),
                     queue_depth);
  Prime(&dev, 1 << 20);
  uint64_t t0 = dev.clock()->NowUs();
  for (uint64_t off : offsets) {
    auto tok = dev.Enqueue(t0, IoRequest{off, 4096, IoMode::kRead});
    EXPECT_TRUE(tok.ok()) << tok.status();
  }
  uint64_t last = t0;
  for (const IoCompletion& c : dev.DrainAll()) {
    last = std::max(last, c.complete_us);
  }
  return last - t0;
}

TEST(AsyncSimDeviceTest, RequestsToDifferentChannelsOverlap) {
  AsyncSimDevice probe(ChanneledDevice(4), 4);
  Prime(&probe, 1 << 20);
  std::vector<uint64_t> offsets = DistinctChannelOffsets(probe, 1 << 20, 4);
  ASSERT_EQ(offsets.size(), 4u)
      << "priming did not stripe pages over all 4 channels";

  uint64_t serial = BurstMakespanUs(1, offsets);
  uint64_t overlapped = BurstMakespanUs(4, offsets);
  // Four IOs on four channels: full overlap approaches 1/4 of the
  // serial makespan (controller costs are small by construction).
  EXPECT_LT(overlapped, serial / 2);

  // Same four IOs aimed at one channel cannot overlap.
  std::vector<uint64_t> same(4, offsets[0]);
  uint64_t same_channel = BurstMakespanUs(4, same);
  EXPECT_GT(same_channel, overlapped * 2);
}

TEST(AsyncSimDeviceTest, QueueDepthBoundsInFlightIos) {
  AsyncSimDevice probe(ChanneledDevice(4), 4);
  Prime(&probe, 1 << 20);
  std::vector<uint64_t> offsets = DistinctChannelOffsets(probe, 1 << 20, 4);
  ASSERT_EQ(offsets.size(), 4u);

  // Even with four distinct channels available, queue_depth caps the
  // concurrency: makespan strictly improves as the queue deepens.
  uint64_t qd1 = BurstMakespanUs(1, offsets);
  uint64_t qd2 = BurstMakespanUs(2, offsets);
  uint64_t qd4 = BurstMakespanUs(4, offsets);
  EXPECT_LT(qd4, qd2);
  EXPECT_LT(qd2, qd1);
}

TEST(AsyncSimDeviceTest, FullQueueBlocksTheSubmitter) {
  AsyncSimDevice dev(ChanneledDevice(4), 1);
  Prime(&dev, 1 << 20);
  std::vector<uint64_t> offsets = DistinctChannelOffsets(dev, 1 << 20, 2);
  ASSERT_EQ(offsets.size(), 2u);
  uint64_t t0 = dev.clock()->NowUs();
  ASSERT_TRUE(dev.Enqueue(t0, IoRequest{offsets[0], 4096,
                                        IoMode::kRead}).ok());
  ASSERT_TRUE(dev.Enqueue(t0, IoRequest{offsets[1], 4096,
                                        IoMode::kRead}).ok());
  auto done = dev.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  // With queue_depth 1 the second submission waits for the first
  // completion even though its channel is idle; the wait is charged to
  // its response time.
  EXPECT_GE(done[1].rt_us,
            static_cast<double>(done[0].complete_us - t0));
}

TEST(AsyncSimDeviceTest, FailedEnqueueDoesNotCorruptBackpressure) {
  AsyncSimDevice dev(ChanneledDevice(4), 1);
  Prime(&dev, 1 << 20);
  std::vector<uint64_t> offsets = DistinctChannelOffsets(dev, 1 << 20, 2);
  ASSERT_EQ(offsets.size(), 2u);
  uint64_t t0 = dev.clock()->NowUs();
  ASSERT_TRUE(dev.Enqueue(t0, IoRequest{offsets[0], 4096,
                                        IoMode::kRead}).ok());
  // An invalid request must fail without forgetting the in-flight IO.
  EXPECT_FALSE(dev.Enqueue(t0, IoRequest{dev.capacity_bytes(), 4096,
                                         IoMode::kRead}).ok());
  EXPECT_FALSE(dev.Enqueue(t0, IoRequest{0, 0, IoMode::kRead}).ok());
  ASSERT_TRUE(dev.Enqueue(t0, IoRequest{offsets[1], 4096,
                                        IoMode::kRead}).ok());
  auto done = dev.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  // queue_depth 1: the second valid IO still waits for the first.
  EXPECT_GE(done[1].rt_us,
            static_cast<double>(done[0].complete_us - t0));
}

// ---------------------------------------------------------------------
// Bounded-controller model: serialized controller stage
// ---------------------------------------------------------------------

/// `rounds` x 4 reads rotating over four distinct-channel offsets -- a
/// queue-saturating burst whose flash stages could overlap 4x.
std::vector<uint64_t> RotatingBurst(const std::vector<uint64_t>& offsets,
                                    uint32_t rounds) {
  std::vector<uint64_t> burst;
  for (uint32_t r = 0; r < rounds; ++r) {
    burst.insert(burst.end(), offsets.begin(), offsets.end());
  }
  return burst;
}

TEST(AsyncSimDeviceTest, SerializedControllerBoundsSpeedupBelowChannels) {
  // The acceptance bar: with controller_us > 0 every queued IO first
  // serializes through the controller, so the high-depth speedup over
  // qd=1 saturates strictly below channels x -- while the default
  // fully-pipelined model keeps approaching channels x.
  AsyncSimDevice probe(ChanneledDevice(4), 4);
  Prime(&probe, 1 << 20);
  std::vector<uint64_t> offsets = DistinctChannelOffsets(probe, 1 << 20, 4);
  ASSERT_EQ(offsets.size(), 4u);
  std::vector<uint64_t> burst = RotatingBurst(offsets, 64);

  const double kCtrlUs = 20.0;
  double pipelined_speedup =
      static_cast<double>(BurstMakespanUs(1, burst)) /
      static_cast<double>(BurstMakespanUs(32, burst));
  double bounded_speedup =
      static_cast<double>(BurstMakespanUs(1, burst, kCtrlUs)) /
      static_cast<double>(BurstMakespanUs(32, burst, kCtrlUs));

  EXPECT_GT(pipelined_speedup, 2.5);  // approaches channels x
  EXPECT_GT(bounded_speedup, 1.0);    // flash stages still overlap
  EXPECT_LT(bounded_speedup, 4.0);    // strictly below channels x
  // The serialized stage visibly binds: well below the pipelined model.
  EXPECT_LT(bounded_speedup, 0.75 * pipelined_speedup);
}

TEST(AsyncSimDeviceTest, PipelinedFalseSerializesDerivedControllerStage) {
  // pipelined = false serializes the controller stage the device model
  // already charges (firmware overhead + bus + penalties) without any
  // extra per-IO cost: same total work, bounded overlap.
  AsyncSimDevice probe(ChanneledDevice(4), 4);
  Prime(&probe, 1 << 20);
  std::vector<uint64_t> offsets = DistinctChannelOffsets(probe, 1 << 20, 4);
  ASSERT_EQ(offsets.size(), 4u);
  std::vector<uint64_t> burst = RotatingBurst(offsets, 64);

  // qd=1 cost is identical in both models (no overlap to bound)...
  uint64_t serial_pipelined = BurstMakespanUs(1, burst);
  uint64_t serial_bounded = BurstMakespanUs(1, burst, 0, false);
  EXPECT_EQ(serial_pipelined, serial_bounded);

  // ...so the makespan gap at depth shows the bound itself.
  uint64_t deep_pipelined = BurstMakespanUs(32, burst);
  uint64_t deep_bounded = BurstMakespanUs(32, burst, 0, false);
  EXPECT_GT(deep_bounded, deep_pipelined);
  double bounded_speedup = static_cast<double>(serial_bounded) /
                           static_cast<double>(deep_bounded);
  EXPECT_GT(bounded_speedup, 1.0);
  EXPECT_LT(bounded_speedup, 4.0);
}

// ---------------------------------------------------------------------
// Parallel runner over the shared completion queue
// ---------------------------------------------------------------------

TEST(ParallelRunnerAsyncTest, MultiQueueDeviceOverlapsParallelStreams) {
  // The same parallel pattern, once against the serializing legacy path
  // and once against the multi-queue device: with queue depth >=
  // channels the streams overlap and both the mean response time and
  // the wall time drop.
  PatternSpec spec = PatternSpec::RandomRead(4096, 0, 1 << 20);
  spec.io_count = 256;
  spec.seed = 7;

  auto serial_dev = ChanneledDevice(4);
  for (uint64_t off = 0; off + 4096 <= (1 << 20); off += 4096) {
    ASSERT_TRUE(
        serial_dev->Submit(IoRequest{off, 4096, IoMode::kWrite}).ok());
  }
  uint64_t serial_t0 = serial_dev->clock()->NowUs();
  auto serial = ExecuteParallelRun(serial_dev.get(), spec, 4);
  ASSERT_TRUE(serial.ok()) << serial.status();
  uint64_t serial_wall = serial_dev->clock()->NowUs() - serial_t0;

  AsyncSimDevice mq(ChanneledDevice(4), 8);
  Prime(&mq, 1 << 20);
  uint64_t mq_t0 = mq.clock()->NowUs();
  auto parallel = ExecuteParallelRun(&mq, spec, 4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  uint64_t mq_wall = mq.clock()->NowUs() - mq_t0;

  EXPECT_EQ(parallel->samples.size(), serial->samples.size());
  EXPECT_LT(mq_wall, serial_wall);
  EXPECT_LT(parallel->Stats().mean_us, serial->Stats().mean_us);
}

namespace {
/// Minimal serializing device with a constant fractional response time,
/// for pinning the carry arithmetic of the runners.
class FractionalDevice : public BlockDevice {
 public:
  explicit FractionalDevice(double rt_us) : rt_us_(rt_us) {}
  uint64_t capacity_bytes() const override { return 64ULL << 20; }
  StatusOr<double> SubmitAt(uint64_t t_us, const IoRequest&) override {
    double start = std::max(static_cast<double>(t_us), busy_until_us_);
    busy_until_us_ = start + rt_us_;
    return busy_until_us_ - static_cast<double>(t_us);
  }
  Clock* clock() override { return &clock_; }
  std::string name() const override { return "frac"; }

 private:
  double rt_us_;
  double busy_until_us_ = 0;
  VirtualClock clock_;
};
}  // namespace

TEST(ParallelRunnerAsyncTest, FinalClockAdvanceKeepsFractionalCarry) {
  // Regression for the ROADMAP carry item: the shared-clock final
  // advance used to truncate max_completion to whole microseconds,
  // dropping the fractional tail the per-process carries preserved.
  FractionalDevice dev(100.5);
  PatternSpec spec = PatternSpec::SequentialRead(4096, 0, 1 << 20);
  spec.io_count = 8;
  auto run = ExecuteParallelRun(&dev, spec, 2);
  ASSERT_TRUE(run.ok()) << run.status();
  // Eight serialized IOs of exactly 100.5us: the last completes at
  // 804us exactly; the clock must land at >= 804, not the truncated 803.
  EXPECT_GE(dev.clock()->NowUs(), 804u);
}

// ---------------------------------------------------------------------
// Open-loop replay through the queue
// ---------------------------------------------------------------------

/// A burst trace of `n` reads over the primed region, all submitted at
/// the same instant, striding one 4KB page at a time (so consecutive
/// events rotate across the striped channels).
Trace BurstTrace(uint32_t n) {
  Trace t;
  t.meta.source = "burst";
  t.meta.capacity_bytes = 0;  // use the target device's capacity
  for (uint32_t i = 0; i < n; ++i) {
    t.events.push_back(
        TraceEvent{0, uint64_t(i) * 4096, 4096, IoMode::kRead, 0});
  }
  return t;
}

TEST(AsyncTraceReplayTest, QueueDepthSpeedsUpOpenLoopReplay) {
  // The acceptance bar: with queue_depth >= channels, an open-loop
  // replay on a multi-channel device completes in measurably less
  // simulated time than the same trace at queue_depth = 1.
  Trace trace = BurstTrace(64);
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  opts.io_ignore = 0;

  auto run_with_depth = [&](uint32_t qd) -> uint64_t {
    AsyncSimDevice dev(ChanneledDevice(4), qd);
    Prime(&dev, 1 << 20);
    uint64_t t0 = dev.clock()->NowUs();
    auto run = ExecuteTraceRun(&dev, trace, opts);
    EXPECT_TRUE(run.ok()) << run.status();
    return dev.clock()->NowUs() - t0;
  };

  uint64_t serial_span = run_with_depth(1);
  uint64_t queued_span = run_with_depth(4);
  EXPECT_LT(queued_span, serial_span / 2)
      << "queued " << queued_span << "us vs serial " << serial_span << "us";
}

TEST(AsyncTraceReplayTest, DepthOneMatchesLegacySyncReplayExactly) {
  // queue_depth = 1 degenerates to the single-queue serialization of
  // the synchronous open-loop replay, microsecond for microsecond.
  Trace trace = BurstTrace(32);
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  opts.io_ignore = 0;

  auto legacy = ChanneledDevice(4);
  for (uint64_t off = 0; off + 4096 <= (1 << 20); off += 4096) {
    ASSERT_TRUE(legacy->Submit(IoRequest{off, 4096, IoMode::kWrite}).ok());
  }
  auto a = ExecuteTraceRun(legacy.get(), trace, opts);
  ASSERT_TRUE(a.ok()) << a.status();

  AsyncSimDevice lifted(ChanneledDevice(4), 1);
  Prime(&lifted, 1 << 20);
  auto b = ExecuteTraceRun(&lifted, trace, opts);
  ASSERT_TRUE(b.ok()) << b.status();

  ASSERT_EQ(a->samples.size(), b->samples.size());
  for (size_t i = 0; i < a->samples.size(); ++i) {
    ASSERT_DOUBLE_EQ(a->samples[i].rt_us, b->samples[i].rt_us) << "IO " << i;
  }
}

TEST(AsyncTraceReplayTest, SerializedControllerDepthOneMatchesSyncPath) {
  // At qd=1 the bounded-controller timeline degenerates to the
  // synchronous serialization: same completions, microsecond for
  // microsecond, controller_us included on both sides.
  Trace trace = BurstTrace(32);
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  opts.io_ignore = 0;

  auto legacy = ChanneledDevice(4, 35.5, false);
  for (uint64_t off = 0; off + 4096 <= (1 << 20); off += 4096) {
    ASSERT_TRUE(legacy->Submit(IoRequest{off, 4096, IoMode::kWrite}).ok());
  }
  auto a = ExecuteTraceRun(legacy.get(), trace, opts);
  ASSERT_TRUE(a.ok()) << a.status();

  AsyncSimDevice lifted(ChanneledDevice(4, 35.5, false), 1);
  Prime(&lifted, 1 << 20);
  auto b = ExecuteTraceRun(&lifted, trace, opts);
  ASSERT_TRUE(b.ok()) << b.status();

  ASSERT_EQ(a->samples.size(), b->samples.size());
  for (size_t i = 0; i < a->samples.size(); ++i) {
    ASSERT_DOUBLE_EQ(a->samples[i].rt_us, b->samples[i].rt_us) << "IO " << i;
  }
}

TEST(AsyncTraceReplayTest, ClosedLoopDrivesTheQueueOneIoAtATime) {
  auto mem = Mem();
  AsyncShim shim(mem.get(), 8);
  Trace trace = BurstTrace(16);
  ReplayOptions opts;  // closed loop
  opts.io_ignore = 0;
  auto run = ExecuteTraceRun(&shim, trace, opts);
  ASSERT_TRUE(run.ok()) << run.status();
  // Closed loop: each submission waits for the previous completion, so
  // no response time includes queue wait (MemDevice 4KB read = 120.48).
  for (const IoSample& s : run->samples) {
    EXPECT_NEAR(s.rt_us, 120.48, 1.0);
  }
  for (size_t i = 1; i < run->samples.size(); ++i) {
    EXPECT_GT(run->samples[i].submit_us, run->samples[i - 1].submit_us);
  }
}

// ---------------------------------------------------------------------
// Async recording: submit vs complete capture, record -> replay
// ---------------------------------------------------------------------

TEST(AsyncRecordingTest, CapturesQueueWaitAndKeepsSubmitOrder) {
  AsyncSimDevice dev(ChanneledDevice(4), 4);
  Prime(&dev, 1 << 20);
  AsyncRecordingDevice rec(&dev);

  Trace trace = BurstTrace(32);
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  opts.io_ignore = 0;
  auto run = ExecuteTraceRun(&rec, trace, opts);
  ASSERT_TRUE(run.ok()) << run.status();

  const Trace& captured = rec.trace();
  ASSERT_EQ(captured.events.size(), trace.events.size());
  EXPECT_TRUE(captured.Validate().ok()) << captured.Validate();
  // Same-instant burst through a deep queue: later IOs carry queue
  // wait, so captured response times grow while submit times match the
  // replayed schedule.
  for (size_t i = 0; i < captured.events.size(); ++i) {
    EXPECT_EQ(captured.events[i].submit_us, run->samples[i].submit_us);
    EXPECT_DOUBLE_EQ(captured.events[i].rt_us, run->samples[i].rt_us);
  }
}

TEST(AsyncRecordingTest, RecordReplayTimestampsAreDeterministic) {
  Trace source = BurstTrace(48);
  ReplayOptions opts;
  opts.timing = ReplayTiming::kOriginal;
  opts.io_ignore = 0;

  // First pass: replay the source trace and record it through the
  // queued API.
  AsyncSimDevice dev1(ChanneledDevice(4), 4);
  Prime(&dev1, 1 << 20);
  AsyncRecordingDevice rec(&dev1);
  ASSERT_TRUE(ExecuteTraceRun(&rec, source, opts).ok());
  Trace captured = rec.TakeTrace();
  ASSERT_EQ(captured.events.size(), source.events.size());

  // Second pass: replay the captured trace on an identical fresh
  // device. Submit schedules and response times must reproduce exactly.
  AsyncSimDevice dev2(ChanneledDevice(4), 4);
  Prime(&dev2, 1 << 20);
  auto replay = ExecuteTraceRun(&dev2, captured, opts);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->samples.size(), captured.events.size());
  uint64_t cap_epoch = captured.events.front().submit_us;
  uint64_t rep_epoch = replay->samples.front().submit_us;
  for (size_t i = 0; i < captured.events.size(); ++i) {
    EXPECT_EQ(replay->samples[i].submit_us - rep_epoch,
              captured.events[i].submit_us - cap_epoch) << "IO " << i;
    EXPECT_DOUBLE_EQ(replay->samples[i].rt_us, captured.events[i].rt_us)
        << "IO " << i;
  }
}

}  // namespace
}  // namespace uflip
