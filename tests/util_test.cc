// Unit tests for src/util: Status/StatusOr, Rng, clocks, AlignedBuffer,
// units formatting, CSV writing, JSON writing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "src/util/aligned_buffer.h"
#include "src/util/clock.h"
#include "src/util/csv.h"
#include "src/util/json_writer.h"
#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace uflip {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad io_size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad io_size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad io_size");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kUnimplemented, StatusCode::kCorruption}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("x");
  EXPECT_EQ(os.str(), "NotFound: x");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::IoError("disk gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto f = []() -> Status {
    UFLIP_RETURN_IF_ERROR(Status::Ok());
    UFLIP_RETURN_IF_ERROR(Status::Corruption("bit rot"));
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(f().code(), StatusCode::kCorruption);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformBoundRespected) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformU64(bound), bound);
  }
  EXPECT_EQ(rng.UniformU64(0), 0u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo |= v == 3;
    hi |= v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(17);
  auto p = rng.Permutation(100);
  std::set<uint64_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(RngTest, ForkIndependent) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(VirtualClockTest, AdvancesOnSleep) {
  VirtualClock c(100);
  EXPECT_EQ(c.NowUs(), 100u);
  c.SleepUs(50);
  EXPECT_EQ(c.NowUs(), 150u);
  c.AdvanceTo(140);  // no-op backwards
  EXPECT_EQ(c.NowUs(), 150u);
  c.AdvanceTo(200);
  EXPECT_EQ(c.NowUs(), 200u);
}

TEST(RealClockTest, Monotonic) {
  RealClock c;
  uint64_t a = c.NowUs();
  c.SleepUs(1000);
  uint64_t b = c.NowUs();
  EXPECT_GE(b, a + 900);
}

TEST(AlignedBufferTest, Alignment) {
  AlignedBuffer buf(1000, 4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.size(), 1000u);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(512, 512);
  uint8_t* p = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(AlignedBufferTest, FillPatternDeterministic) {
  AlignedBuffer a(256), b(256);
  a.FillPattern(7);
  b.FillPattern(7);
  EXPECT_EQ(memcmp(a.data(), b.data(), 256), 0);
  b.FillPattern(8);
  EXPECT_NE(memcmp(a.data(), b.data(), 256), 0);
}

TEST(UnitsTest, FormatSize) {
  EXPECT_EQ(FormatSize(512), "512B");
  EXPECT_EQ(FormatSize(32 * kKiB), "32.0KB");
  EXPECT_EQ(FormatSize(8 * kMiB), "8.0MB");
  EXPECT_EQ(FormatSize(2 * kGiB), "2GB");
}

TEST(UnitsTest, FormatMs) { EXPECT_EQ(FormatMs(5250.0), "5.25ms"); }

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(MsToUs(1.5), 1500u);
  EXPECT_DOUBLE_EQ(UsToMs(2500), 2.5);
}

TEST(CsvTest, WritesRowsWithEscaping) {
  std::string path = testing::TempDir() + "/uflip_csv_test.csv";
  auto w = CsvWriter::Open(path);
  ASSERT_TRUE(w.ok());
  w->WriteRow(std::vector<std::string>{"a", "b,c", "d\"e"});
  w->WriteRow(std::vector<double>{1.5, 2.25});
  ASSERT_TRUE(w->Close().ok());

  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,2.25");
  std::remove(path.c_str());
}

TEST(CsvTest, OpenFailsOnBadPath) {
  auto w = CsvWriter::Open("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(w.ok());
}

std::string JsonDouble(double v) {
  JsonWriter w(0);
  w.BeginArray().Double(v).EndArray();
  const std::string& out = w.str();
  return out.substr(1, out.size() - 2);  // strip [ ]
}

TEST(JsonWriterTest, DoubleIsShortestExactRoundTrip) {
  // Friendly values keep their short spelling...
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  EXPECT_EQ(JsonDouble(0.1), "0.1");
  EXPECT_EQ(JsonDouble(1234.0), "1234");
  // ...and values past six significant digits are not rounded away.
  // (Metric sums routinely reach 1e8+ microseconds; the manifest must
  // preserve them so stage-sum cross-checks hold after a JSON round
  // trip.)
  for (double v : {129537314.0, 130022048.0, 1.0 / 3.0, 6.02214076e23}) {
    EXPECT_EQ(std::strtod(JsonDouble(v).c_str(), nullptr), v) << v;
  }
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonDouble(std::nan("")), "null");
}

}  // namespace
}  // namespace uflip
