// Report/rendering tests: ASCII charts, Table 3 formatting, experiment
// series extraction, micro-benchmark sweeps and names.
#include <gtest/gtest.h>

#include "src/core/microbench.h"
#include "src/core/table3.h"
#include "src/report/ascii_chart.h"

namespace uflip {
namespace {

TEST(AsciiChartTest, RendersSeriesWithinBounds) {
  ChartSeries s;
  s.name = "rt";
  s.glyph = '*';
  for (int i = 0; i < 50; ++i) {
    s.x.push_back(i);
    s.y.push_back(100.0 + 10.0 * (i % 7));
  }
  ChartOptions opts;
  opts.width = 60;
  opts.height = 10;
  opts.title = "test chart";
  std::string out = RenderChart({s}, opts);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("rt"), std::string::npos);
}

TEST(AsciiChartTest, LogScaleHandlesWideRanges) {
  ChartSeries s;
  s.name = "wide";
  s.x = {1, 2, 3};
  s.y = {0.1, 10, 10000};
  ChartOptions opts;
  opts.log_y = true;
  std::string out = RenderChart({s}, opts);
  EXPECT_FALSE(out.empty());
  // Axis labels reflect the original values (not logs).
  EXPECT_NE(out.find("0.1"), std::string::npos);
}

TEST(AsciiChartTest, EmptySeriesSafe) {
  ChartOptions opts;
  opts.title = "empty";
  std::string out = RenderChart({}, opts);
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChartTest, TraceHelper) {
  std::vector<double> y = {1, 2, 3, 2, 1};
  ChartOptions opts;
  std::string out = RenderTrace(y, opts);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  ChartSeries s;
  s.x = {1, 2, 3};
  s.y = {5, 5, 5};
  std::string out = RenderChart({s}, ChartOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(Table3RenderTest, FactorFormatting) {
  EXPECT_EQ(Table3Row::FormatFactor(1.0), "=");
  EXPECT_EQ(Table3Row::FormatFactor(1.1), "=");
  EXPECT_EQ(Table3Row::FormatFactor(2.0), "x2.0");
  EXPECT_EQ(Table3Row::FormatFactor(0.6), "x0.6");
  EXPECT_EQ(Table3Row::FormatFactor(40.0), "x40");
  EXPECT_EQ(Table3Row::FormatFactor(0.0), "-");
}

TEST(Table3RenderTest, RendersAllColumns) {
  Table3Row r;
  r.device = "testdev";
  r.sr_ms = 0.3;
  r.rr_ms = 0.4;
  r.sw_ms = 0.3;
  r.rw_ms = 5.0;
  r.rw_pause_ms = 5.0;
  r.locality_mb = 8;
  r.locality_factor = 1.0;
  r.partitions = 8;
  r.partition_factor = 1.0;
  r.reverse_factor = 1.0;
  r.inplace_factor = 1.0;
  r.large_incr_factor = 4.0;
  std::string out = RenderTable3({r});
  EXPECT_NE(out.find("testdev"), std::string::npos);
  EXPECT_NE(out.find("8MB"), std::string::npos);
  EXPECT_NE(out.find("x4.0"), std::string::npos);
}

TEST(MicroBenchTest, NamesAndEnumeration) {
  auto all = AllMicroBenches();
  EXPECT_EQ(all.size(), 9u);  // the nine micro-benchmarks
  EXPECT_STREQ(MicroBenchName(all.front()), "Granularity");
  EXPECT_STREQ(MicroBenchName(all.back()), "Bursts");
}

TEST(MicroBenchTest, DefaultSweepsMatchTable1Ranges) {
  MicroBenchConfig cfg;
  auto gran = DefaultSweep(MicroBench::kGranularity, cfg);
  EXPECT_EQ(gran.front(), 512);  // [2^0..2^9] x 512B
  EXPECT_EQ(gran.back(), 512 * 512);
  auto shift = DefaultSweep(MicroBench::kAlignment, cfg);
  EXPECT_EQ(shift.front(), 512);
  EXPECT_EQ(shift.back(), cfg.io_size);
  auto order = DefaultSweep(MicroBench::kOrder, cfg);
  EXPECT_EQ(order.front(), -1);  // reverse
  EXPECT_EQ(order[1], 0);        // in-place
  EXPECT_EQ(order.back(), 256);
  auto pause = DefaultSweep(MicroBench::kPause, cfg);
  EXPECT_EQ(pause.front(), 100);  // 0.1 msec
  auto par = DefaultSweep(MicroBench::kParallelism, cfg);
  EXPECT_EQ(par.back(), 16);  // 2^4
  auto mix = DefaultSweep(MicroBench::kMix, cfg);
  EXPECT_EQ(mix.back(), 64);  // 2^6
}

TEST(MicroBenchTest, ExperimentSeriesHelpers) {
  Experiment e;
  e.name = "x";
  ExperimentPoint p;
  p.param = 7;
  p.run.spec = PatternSpec::SequentialRead(32768, 0, 1 << 20);
  p.run.samples.push_back(IoSample{0, 0, 100.0, {}});
  p.run.samples.push_back(IoSample{1, 100, 200.0, {}});
  e.points.push_back(p);
  EXPECT_EQ(e.ParamSeries(), std::vector<double>{7});
  EXPECT_EQ(e.MeanSeries(), std::vector<double>{150.0});
}

}  // namespace
}  // namespace uflip
