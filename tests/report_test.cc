// Report/rendering tests: ASCII charts, Table 3 formatting, experiment
// series extraction, micro-benchmark sweeps and names.
#include <gtest/gtest.h>

#include "src/core/microbench.h"
#include "src/core/table3.h"
#include "src/report/ascii_chart.h"
#include "src/report/grid_report.h"

namespace uflip {
namespace {

/// A deterministic two-axis sweep grid for the golden tests.
GridReport SampleGrid() {
  GridReport grid({"device", "qd"});
  GridCell a;
  a.keys = {"mtron", "1"};
  a.stats.count = 100;
  a.stats.mean_us = 2000;
  a.stats.p50_us = 1800;
  a.stats.p95_us = 3000;
  a.stats.p99_us = 3500;
  a.stats.min_us = 900;
  a.stats.max_us = 4000;
  a.stats.stddev_us = 250;
  a.ios = 100;
  a.makespan_us = 200000;
  grid.Add(a);
  GridCell b;
  b.keys = {"mtron", "8"};
  b.stats.count = 100;
  b.stats.mean_us = 500;
  b.stats.p50_us = 450;
  b.stats.p95_us = 800;
  b.stats.p99_us = 900;
  b.stats.min_us = 200;
  b.stats.max_us = 1000;
  b.stats.stddev_us = 60;
  b.ios = 100;
  b.makespan_us = 50000;
  grid.Add(b);
  return grid;
}

TEST(GridReportTest, RenderGolden) {
  std::string out = SampleGrid().Render("Sweep:");
  const char* expected =
      "Sweep:\n"
      "    device qd   mean ms  ci95 ms      x    p50 ms    p95 ms"
      "    p99 ms    max ms     IOs/s\n"
      "    mtron  1      2.000    0.000   4.00     1.800     3.000"
      "     3.500     4.000       500\n"
      " *  mtron  8      0.500    0.000   1.00     0.450     0.800"
      "     0.900     1.000      2000\n"
      "   (* = best cell; x = mean vs best)\n";
  EXPECT_EQ(out, expected);
}

TEST(GridReportTest, CsvGolden) {
  std::string out = SampleGrid().ToCsv();
  const char* expected =
      "device,qd,ios,reps,mean_us,mean_ci95_us,stddev_us,p50_us,p95_us,"
      "p99_us,min_us,max_us,makespan_us,ios_per_sec\n"
      "mtron,1,100,1,2000.000,0.000,250.000,1800.000,3000.000,3500.000,"
      "900.000,4000.000,200000,500.0\n"
      "mtron,8,100,1,500.000,0.000,60.000,450.000,800.000,900.000,"
      "200.000,1000.000,50000,2000.0\n";
  EXPECT_EQ(out, expected);
  // Header suppression lets grids that share axes concatenate.
  std::string rows = SampleGrid().ToCsv(/*header=*/false);
  EXPECT_EQ(out.find(rows), out.size() - rows.size());
}

/// Three replicated cells: best at 500us +/- 80, a statistical tie at
/// 550us +/- 60 (intervals overlap), a genuine loser at 900us +/- 20.
GridReport ReplicatedGrid() {
  GridReport grid({"ftl"});
  const char* names[3] = {"best", "tie", "loser"};
  double means[3] = {500, 550, 900};
  double cis[3] = {80, 60, 20};
  for (int i = 0; i < 3; ++i) {
    GridCell c;
    c.keys = {names[i]};
    c.stats.count = 300;
    c.stats.mean_us = means[i];
    c.stats.p50_us = means[i];
    c.stats.p95_us = means[i] * 1.5;
    c.stats.p99_us = means[i] * 1.8;
    c.stats.max_us = means[i] * 2;
    c.reps = 3;
    c.mean_ci95_us = cis[i];
    c.ios = 300;
    c.makespan_us = 300000;
    grid.Add(c);
  }
  return grid;
}

TEST(GridReportTest, CiOverlapMarksStatisticalTies) {
  GridReport grid = ReplicatedGrid();
  EXPECT_EQ(grid.BestIndex(), 0u);
  EXPECT_FALSE(grid.TiesWithBest(0));  // the best itself is not a tie
  EXPECT_TRUE(grid.TiesWithBest(1));   // |550-500| = 50 <= 60+80
  EXPECT_FALSE(grid.TiesWithBest(2));  // |900-500| = 400 > 20+80

  std::string out = grid.Render("CI:");
  EXPECT_NE(out.find(" *  best"), std::string::npos);
  EXPECT_NE(out.find(" ~  tie"), std::string::npos);
  EXPECT_NE(out.find("    loser"), std::string::npos);
  EXPECT_NE(out.find("~ = 95% CI overlaps best"), std::string::npos);
}

TEST(GridReportTest, CsvCarriesRepsAndCi) {
  std::string csv = ReplicatedGrid().ToCsv();
  EXPECT_NE(csv.find("mean_ci95_us"), std::string::npos);
  EXPECT_NE(csv.find("best,300,3,500.000,80.000,"), std::string::npos);
  EXPECT_NE(csv.find("tie,300,3,550.000,60.000,"), std::string::npos);
}

TEST(GridReportTest, BestIndexSkipsEmptyCells) {
  GridReport grid({"k"});
  GridCell empty;
  empty.keys = {"none"};
  grid.Add(empty);
  EXPECT_EQ(grid.BestIndex(), SIZE_MAX);
  GridCell real;
  real.keys = {"real"};
  real.stats.count = 1;
  real.stats.mean_us = 10;
  grid.Add(real);
  EXPECT_EQ(grid.BestIndex(), 1u);
}

TEST(AsciiChartTest, RendersSeriesWithinBounds) {
  ChartSeries s;
  s.name = "rt";
  s.glyph = '*';
  for (int i = 0; i < 50; ++i) {
    s.x.push_back(i);
    s.y.push_back(100.0 + 10.0 * (i % 7));
  }
  ChartOptions opts;
  opts.width = 60;
  opts.height = 10;
  opts.title = "test chart";
  std::string out = RenderChart({s}, opts);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("rt"), std::string::npos);
}

TEST(AsciiChartTest, LogScaleHandlesWideRanges) {
  ChartSeries s;
  s.name = "wide";
  s.x = {1, 2, 3};
  s.y = {0.1, 10, 10000};
  ChartOptions opts;
  opts.log_y = true;
  std::string out = RenderChart({s}, opts);
  EXPECT_FALSE(out.empty());
  // Axis labels reflect the original values (not logs).
  EXPECT_NE(out.find("0.1"), std::string::npos);
}

TEST(AsciiChartTest, EmptySeriesSafe) {
  ChartOptions opts;
  opts.title = "empty";
  std::string out = RenderChart({}, opts);
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChartTest, TraceHelper) {
  std::vector<double> y = {1, 2, 3, 2, 1};
  ChartOptions opts;
  std::string out = RenderTrace(y, opts);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  ChartSeries s;
  s.x = {1, 2, 3};
  s.y = {5, 5, 5};
  std::string out = RenderChart({s}, ChartOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(Table3RenderTest, FactorFormatting) {
  EXPECT_EQ(Table3Row::FormatFactor(1.0), "=");
  EXPECT_EQ(Table3Row::FormatFactor(1.1), "=");
  EXPECT_EQ(Table3Row::FormatFactor(2.0), "x2.0");
  EXPECT_EQ(Table3Row::FormatFactor(0.6), "x0.6");
  EXPECT_EQ(Table3Row::FormatFactor(40.0), "x40");
  EXPECT_EQ(Table3Row::FormatFactor(0.0), "-");
}

TEST(Table3RenderTest, RendersAllColumns) {
  Table3Row r;
  r.device = "testdev";
  r.sr_ms = 0.3;
  r.rr_ms = 0.4;
  r.sw_ms = 0.3;
  r.rw_ms = 5.0;
  r.rw_pause_ms = 5.0;
  r.locality_mb = 8;
  r.locality_factor = 1.0;
  r.partitions = 8;
  r.partition_factor = 1.0;
  r.reverse_factor = 1.0;
  r.inplace_factor = 1.0;
  r.large_incr_factor = 4.0;
  std::string out = RenderTable3({r});
  EXPECT_NE(out.find("testdev"), std::string::npos);
  EXPECT_NE(out.find("8MB"), std::string::npos);
  EXPECT_NE(out.find("x4.0"), std::string::npos);
}

TEST(MicroBenchTest, NamesAndEnumeration) {
  auto all = AllMicroBenches();
  EXPECT_EQ(all.size(), 9u);  // the nine micro-benchmarks
  EXPECT_STREQ(MicroBenchName(all.front()), "Granularity");
  EXPECT_STREQ(MicroBenchName(all.back()), "Bursts");
}

TEST(MicroBenchTest, DefaultSweepsMatchTable1Ranges) {
  MicroBenchConfig cfg;
  auto gran = DefaultSweep(MicroBench::kGranularity, cfg);
  EXPECT_EQ(gran.front(), 512);  // [2^0..2^9] x 512B
  EXPECT_EQ(gran.back(), 512 * 512);
  auto shift = DefaultSweep(MicroBench::kAlignment, cfg);
  EXPECT_EQ(shift.front(), 512);
  EXPECT_EQ(shift.back(), cfg.io_size);
  auto order = DefaultSweep(MicroBench::kOrder, cfg);
  EXPECT_EQ(order.front(), -1);  // reverse
  EXPECT_EQ(order[1], 0);        // in-place
  EXPECT_EQ(order.back(), 256);
  auto pause = DefaultSweep(MicroBench::kPause, cfg);
  EXPECT_EQ(pause.front(), 100);  // 0.1 msec
  auto par = DefaultSweep(MicroBench::kParallelism, cfg);
  EXPECT_EQ(par.back(), 16);  // 2^4
  auto mix = DefaultSweep(MicroBench::kMix, cfg);
  EXPECT_EQ(mix.back(), 64);  // 2^6
}

TEST(MicroBenchTest, ExperimentSeriesHelpers) {
  Experiment e;
  e.name = "x";
  ExperimentPoint p;
  p.param = 7;
  p.run.spec = PatternSpec::SequentialRead(32768, 0, 1 << 20);
  p.run.samples.push_back(IoSample{0, 0, 100.0, {}});
  p.run.samples.push_back(IoSample{1, 100, 200.0, {}});
  e.points.push_back(p);
  EXPECT_EQ(e.ParamSeries(), std::vector<double>{7});
  EXPECT_EQ(e.MeanSeries(), std::vector<double>{150.0});
}

}  // namespace
}  // namespace uflip
