// Observability-layer tests: metric registry round-trips, the
// deterministic snapshot-merge algebra (commutative + associative,
// checked as JSON identity), the zero-cost disabled path (null-handle
// no-ops, and attachment not perturbing simulated results), the
// log-bucket histogram's exactness guarantees and its t-digest
// synthesis, time-series coalescing, the RunManifest JSON schema, and
// the GridReport CSV column-set stability across --reps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/obs/metric_registry.h"
#include "src/obs/run_manifest.h"
#include "src/obs/time_series.h"
#include "src/report/grid_report.h"
#include "src/util/random.h"
#include "tests/sim_test_util.h"

namespace uflip {
namespace {

// ---------------------------------------------------------------------
// Registry round-trip
// ---------------------------------------------------------------------

TEST(MetricRegistryTest, RoundTripsEveryKind) {
  MetricRegistry reg;
  obs::Inc(reg.GetCounter("a.count"), 3);
  obs::Add(reg.GetSum("a.sum_us"), 1.5);
  obs::SetMax(reg.GetGauge("b.peak"), 7);
  obs::SetMax(reg.GetGauge("b.peak"), 4);  // below the high-water mark
  obs::Histogram* h = reg.GetHistogram("b.lat_us");
  obs::Observe(h, 100);
  obs::Observe(h, 200);
  TimeSeries* ts = reg.GetTimeSeries("c.busy_us", 1024);
  obs::Span(ts, 0, 2048);

  // Re-getting a name returns the same live object.
  EXPECT_EQ(reg.GetCounter("a.count"), reg.GetCounter("a.count"));

  MetricSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("a.count"), 3u);
  EXPECT_DOUBLE_EQ(snap.Value("a.sum_us"), 1.5);
  EXPECT_DOUBLE_EQ(snap.Value("b.peak"), 7);
  const MetricValue* lat = snap.Find("b.lat_us");
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(lat->hist, nullptr);
  EXPECT_EQ(lat->hist->count(), 2u);
  EXPECT_DOUBLE_EQ(lat->hist->Quantile(0), 100);
  EXPECT_DOUBLE_EQ(lat->hist->Quantile(1), 200);
  const MetricValue* busy = snap.Find("c.busy_us");
  ASSERT_NE(busy, nullptr);
  ASSERT_NE(busy->series, nullptr);
  EXPECT_DOUBLE_EQ(busy->series->TotalSum(), 2048);
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

TEST(MetricRegistryTest, CollectorsRunAtSnapshot) {
  MetricRegistry reg;
  obs::Gauge* g = reg.GetGauge("pulled.value");
  int pulls = 0;
  reg.AddCollector([&] {
    ++pulls;
    obs::SetMax(g, 42);
  });
  EXPECT_EQ(pulls, 0);
  MetricSnapshot snap = reg.Snapshot();
  EXPECT_EQ(pulls, 1);
  EXPECT_DOUBLE_EQ(snap.Value("pulled.value"), 42);
}

// ---------------------------------------------------------------------
// Merge algebra
// ---------------------------------------------------------------------

/// A snapshot with every kind populated; `salt` varies the stream so
/// operands differ.
MetricSnapshot MakeSnapshot(uint64_t salt) {
  MetricRegistry reg;
  obs::Inc(reg.GetCounter("shared.count"), 10 + salt);
  obs::Add(reg.GetSum("shared.sum"), 0.5 * static_cast<double>(salt + 1));
  obs::SetMax(reg.GetGauge("shared.peak"), static_cast<double>(100 * salt));
  obs::Histogram* h = reg.GetHistogram("shared.lat_us");
  Rng rng(salt);
  for (int i = 0; i < 2000; ++i) {
    obs::Observe(h, 50 + 5000 * rng.UniformDouble());
  }
  TimeSeries* ts = reg.GetTimeSeries("shared.busy_us", 1024);
  obs::Span(ts, salt * 512, salt * 512 + 4096);
  // One name unique to this operand: must carry over unchanged.
  obs::Inc(reg.GetCounter("only." + std::to_string(salt)), salt);
  return reg.Snapshot();
}

TEST(MetricSnapshotTest, MergeIsCommutative) {
  MetricSnapshot ab = MakeSnapshot(1);
  ab.Merge(MakeSnapshot(2));
  MetricSnapshot ba = MakeSnapshot(2);
  ba.Merge(MakeSnapshot(1));
  EXPECT_EQ(ab.ToJson(), ba.ToJson());
  // Spot-check the merged values, not just mutual consistency.
  EXPECT_EQ(ab.CounterValue("shared.count"), 23u);
  EXPECT_DOUBLE_EQ(ab.Value("shared.sum"), 2.5);
  EXPECT_DOUBLE_EQ(ab.Value("shared.peak"), 200);
  EXPECT_EQ(ab.CounterValue("only.1"), 1u);
  EXPECT_EQ(ab.CounterValue("only.2"), 2u);
  EXPECT_EQ(ab.Find("shared.lat_us")->hist->count(), 4000u);
}

TEST(MetricSnapshotTest, MergeIsAssociative) {
  MetricSnapshot left = MakeSnapshot(1);
  left.Merge(MakeSnapshot(2));
  left.Merge(MakeSnapshot(3));
  MetricSnapshot bc = MakeSnapshot(2);
  bc.Merge(MakeSnapshot(3));
  MetricSnapshot right = MakeSnapshot(1);
  right.Merge(bc);
  EXPECT_EQ(left.ToJson(), right.ToJson());
}

TEST(MetricSnapshotTest, MergeWithEmptyIsIdentity) {
  MetricSnapshot a = MakeSnapshot(1);
  std::string before = a.ToJson();
  a.Merge(MetricSnapshot());
  EXPECT_EQ(a.ToJson(), before);
  MetricSnapshot b;
  b.Merge(MakeSnapshot(1));
  EXPECT_EQ(b.ToJson(), before);
}

// ---------------------------------------------------------------------
// Zero-cost disabled path
// ---------------------------------------------------------------------

TEST(ObsDisabledTest, NullHandlesAreNoOps) {
  obs::Inc(nullptr);
  obs::Inc(nullptr, 5);
  obs::Add(nullptr, 1.0);
  obs::SetMax(nullptr, 1.0);
  obs::Observe(nullptr, 1.0);
  obs::Sample(nullptr, 0, 1.0);
  obs::Span(nullptr, 0, 10);
  // Nothing to assert beyond "did not crash": the helpers must accept
  // null without touching memory.
}

TEST(ObsDisabledTest, AttachmentDoesNotPerturbSimulation) {
  auto plain = MakeTestDevice("mtron", 8ULL << 20);
  auto inst = MakeTestDevice("mtron", 8ULL << 20);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(inst, nullptr);
  MetricRegistry registry;
  inst->AttachMetrics(&registry);

  // The identical IO sequence must produce identical response times on
  // both devices: instrumentation observes the simulation, it must not
  // participate in it.
  const uint32_t page = plain->page_bytes();
  const uint64_t pages = plain->capacity_bytes() / page;
  Rng rng(17);
  uint64_t writes = 0, reads = 0;
  for (int i = 0; i < 400; ++i) {
    bool is_write = i < 50 || rng.Bernoulli(0.5);  // prefix warms the map
    uint64_t off = rng.UniformU64(pages - 1) * page;
    IoRequest req{off, page, is_write ? IoMode::kWrite : IoMode::kRead};
    (is_write ? writes : reads) += 1;
    auto a = plain->SubmitAt(plain->virtual_clock()->NowUs(), req);
    auto b = inst->SubmitAt(inst->virtual_clock()->NowUs(), req);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    ASSERT_DOUBLE_EQ(*a, *b) << "IO " << i;
    plain->virtual_clock()->SleepUs(static_cast<uint64_t>(*a));
    inst->virtual_clock()->SleepUs(static_cast<uint64_t>(*b));
  }

  MetricSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("device.reads"), reads);
  EXPECT_EQ(snap.CounterValue("device.writes"), writes);
  EXPECT_EQ(snap.Find("device.service_us")->hist->count(), reads + writes);
}

// ---------------------------------------------------------------------
// Log-bucket histogram
// ---------------------------------------------------------------------

TEST(ObsHistogramTest, CountMinMaxAreExact) {
  obs::Histogram h;
  h.Record(123.456);
  h.Record(0.0);        // clamps into the underflow bucket
  h.Record(-5.0);       // negative: underflow bucket, exact min kept
  h.Record(1e12);       // beyond kMaxExp: overflow bucket, exact max kept
  h.Record(std::nan(""));  // ignored, like TDigest::Add
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.min, -5.0);
  EXPECT_DOUBLE_EQ(h.max, 1e12);

  TDigest d = h.ToDigest();
  EXPECT_EQ(d.count(), 4u);
  EXPECT_DOUBLE_EQ(d.Quantile(0), -5.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1), 1e12);
}

TEST(ObsHistogramTest, QuantilesWithinBucketResolution) {
  // Log-spaced latencies spanning several decades: every synthesized
  // quantile must land within one sub-bucket ratio (2^(1/16) ~ 4.4%)
  // of the exact order statistic.
  obs::Histogram h;
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    double v = 50 * std::exp(4.0 * rng.UniformDouble());
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  TDigest d = h.ToDigest();
  EXPECT_EQ(d.count(), values.size());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    double got = d.Quantile(q);
    EXPECT_NEAR(got / exact, 1.0, 0.045) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(d.Quantile(0), values.front());
  EXPECT_DOUBLE_EQ(d.Quantile(1), values.back());
}

TEST(ObsHistogramTest, SynthesisIsDeterministic) {
  obs::Histogram a, b;
  Rng rng(11);
  std::vector<double> stream;
  for (int i = 0; i < 5000; ++i) stream.push_back(10 + 990 * rng.UniformDouble());
  for (double v : stream) a.Record(v);
  // Same multiset, different order.
  std::sort(stream.rbegin(), stream.rend());
  for (double v : stream) b.Record(v);
  // Bucket recording is order-free by construction, so the digests --
  // and any snapshot JSON built on them -- are identical.
  TDigest da = a.ToDigest(), db = b.ToDigest();
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(da.Quantile(q), db.Quantile(q)) << "q=" << q;
  }
}

TEST(TDigestTest, AddWeightedMatchesRepeatedAdd) {
  // Many distinct points with small weights: the two insertion styles
  // build slightly different centroid sets (weighted atoms vs compacted
  // singleton runs), but over a dense value grid the quantiles must
  // agree within the sketch's accuracy.
  TDigest repeated, weighted;
  Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    double x = 20 * std::exp(0.02 * i);
    int n = 1 + static_cast<int>(rng.UniformU64(7));
    for (int j = 0; j < n; ++j) repeated.Add(x);
    weighted.AddWeighted(x, n);
  }
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_DOUBLE_EQ(weighted.Quantile(0), repeated.Quantile(0));
  EXPECT_DOUBLE_EQ(weighted.Quantile(1), repeated.Quantile(1));
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(weighted.Quantile(q) / repeated.Quantile(q), 1.0, 0.02)
        << "q=" << q;
  }
  // Ignored inputs.
  uint64_t before = weighted.count();
  weighted.AddWeighted(std::nan(""), 10);
  weighted.AddWeighted(50, 0);
  weighted.AddWeighted(50, -3);
  EXPECT_EQ(weighted.count(), before);
}

// ---------------------------------------------------------------------
// Time series
// ---------------------------------------------------------------------

TEST(ObsTimeSeriesTest, CoalescesAndMerges) {
  // 4-bucket budget forced through 16 initial intervals: the series
  // must coalesce (interval doubling) instead of growing.
  TimeSeries a(1024, /*max_buckets=*/4);
  for (uint64_t t = 0; t < 16; ++t) a.Add(t * 1024, 1.0);
  EXPECT_LE(a.size(), 4u);
  EXPECT_GE(a.interval_us(), 4096u);
  EXPECT_DOUBLE_EQ(a.TotalSum(), 16.0);
  EXPECT_EQ(a.TotalCount(), 16u);

  // Merging a younger, finer series re-aligns it onto the coarser
  // timeline; mass is conserved.
  TimeSeries b(1024, 4);
  b.Add(100, 5.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.TotalSum(), 21.0);
  EXPECT_EQ(a.TotalCount(), 17u);
}

// ---------------------------------------------------------------------
// Run manifest schema
// ---------------------------------------------------------------------

TEST(RunManifestTest, JsonGolden) {
  MetricRegistry reg;
  obs::Inc(reg.GetCounter("a.count"), 3);
  RunManifest m;
  m.tool = "unit_test";
  m.AddFlag("zeta", "1");
  m.AddFlag("alpha", "two");  // must emit sorted before "zeta"
  m.seed = 42;
  m.events = 100;
  m.wall_seconds = 0.5;
  m.sim_makespan_us = 12345;
  m.span_trace_enabled = true;
  m.span_config.head_limit = 4096;
  m.span_config.tail_k = 64;
  m.metrics = reg.Snapshot();

  std::string expected = std::string(
      "{\n"
      "  \"schema\": \"uflip.run_manifest/v2\",\n"
      "  \"tool\": \"unit_test\",\n"
      "  \"git\": \"") + GitDescribe() + "\",\n"
      "  \"seed\": 42,\n"
      "  \"flags\": {\n"
      "    \"alpha\": \"two\",\n"
      "    \"zeta\": \"1\"\n"
      "  },\n"
      "  \"jobs\": 1,\n"
      "  \"calendar_shards\": 1,\n"
      "  \"events\": 100,\n"
      "  \"wall_seconds\": 0.5,\n"
      "  \"events_per_sec\": 200,\n"
      "  \"sim_makespan_us\": 12345,\n"
      "  \"span_trace\": {\n"
      "    \"enabled\": true,\n"
      "    \"head_limit\": 4096,\n"
      "    \"slowest_k\": 64\n"
      "  },\n"
      "  \"metrics\": {\n"
      "    \"a.count\": {\n"
      "      \"kind\": \"counter\",\n"
      "      \"value\": 3\n"
      "    }\n"
      "  }\n"
      "}";
  EXPECT_EQ(m.ToJson(), expected);
}

// v1 records (written before span tracing existed) carry the old schema
// tag and no span_trace object; consumers accept both tags, so stored
// v1 manifests stay readable next to v2 output.
TEST(RunManifestTest, V1RecordsStayReadable) {
  // A verbatim v1 record as PR 6-9 emitted it.
  const std::string v1_record =
      "{\n"
      "  \"schema\": \"uflip.run_manifest/v1\",\n"
      "  \"tool\": \"trace_tool\",\n"
      "  \"git\": \"unknown\",\n"
      "  \"seed\": 7,\n"
      "  \"flags\": {},\n"
      "  \"jobs\": 1,\n"
      "  \"calendar_shards\": 1,\n"
      "  \"events\": 10,\n"
      "  \"wall_seconds\": 0.1,\n"
      "  \"events_per_sec\": 100,\n"
      "  \"sim_makespan_us\": 99,\n"
      "  \"metrics\": {}\n"
      "}";
  EXPECT_NE(v1_record.find(RunManifest::kSchemaV1), std::string::npos);
  EXPECT_TRUE(RunManifest::SchemaReadable(RunManifest::kSchemaV1));
  EXPECT_TRUE(RunManifest::SchemaReadable(RunManifest::kSchema));
  EXPECT_FALSE(RunManifest::SchemaReadable("uflip.run_manifest/v3"));
  EXPECT_FALSE(RunManifest::SchemaReadable(""));
}

TEST(RunManifestTest, EventsPerSecGuardsZeroWall) {
  RunManifest m;
  m.events = 100;
  m.wall_seconds = 0;
  EXPECT_DOUBLE_EQ(m.EventsPerSec(), 0);
}

// ---------------------------------------------------------------------
// Grid CSV schema stability
// ---------------------------------------------------------------------

TEST(GridReportTest, CsvHeaderStableAcrossReps) {
  GridReport single({"device", "qd"});
  GridCell one;
  one.keys = {"mtron", "1"};
  one.stats.count = 10;
  one.reps = 1;
  single.Add(one);

  GridReport replicated({"device", "qd"});
  GridCell many;
  many.keys = {"mtron", "8"};
  many.stats.count = 30;
  many.reps = 3;
  many.mean_ci95_us = 12;
  replicated.Add(many);

  // Same axes => byte-identical header regardless of replication, so
  // CSVs produced with different --reps concatenate and diff cleanly.
  EXPECT_EQ(single.CsvHeader(), replicated.CsvHeader());
  EXPECT_NE(single.CsvHeader().find("reps"), std::string::npos);
  EXPECT_NE(single.CsvHeader().find("mean_ci95_us"), std::string::npos);
  // Rows always fill the full column set.
  std::string header = single.CsvHeader();
  size_t cols = std::count(header.begin(), header.end(), ',');
  std::string row = single.ToCsv(/*header=*/false);
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), static_cast<long>(cols));
}

}  // namespace
}  // namespace uflip
