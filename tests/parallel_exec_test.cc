// Parallel execution core tests: ParallelFor/RunUnits semantics (index
// ordering, inline jobs=1 path, run-everything-report-lowest-index
// failure policy) plus the property the whole feature exists for -- a
// miniature explorer-style sweep whose rendered grid, CSV and merged
// metric snapshot are byte-identical at --jobs=1 and --jobs=4.
#include "src/run/parallel_exec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/metric_registry.h"
#include "src/report/grid_report.h"
#include "src/run/run_stats.h"
#include "src/run/trace_run.h"
#include "src/stats/replicate_set.h"
#include "src/trace/synthetic.h"

namespace uflip {
namespace {

using bench::MakeDeviceWithState;

TEST(ParallelExecTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(DefaultJobs(), 1u);
}

TEST(ParallelExecTest, RunUnitsReturnsIndexOrderedResults) {
  // Later units sleep less, so under 4 workers completion order is
  // roughly the reverse of submission order -- the slots must come back
  // in unit-index order regardless.
  const size_t kUnits = 12;
  auto out = RunUnits<size_t>(kUnits, 4, [](size_t i) -> StatusOr<size_t> {
    std::this_thread::sleep_for(std::chrono::microseconds(500 * (12 - i)));
    return i * 10;
  });
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), kUnits);
  for (size_t i = 0; i < kUnits; ++i) EXPECT_EQ((*out)[i], i * 10);
}

TEST(ParallelExecTest, JobsOneRunsInlineOnCallingThread) {
  // uflip-lint: allow(thread-id) -- asserts jobs=1 runs inline on the caller thread
  std::thread::id caller = std::this_thread::get_id();
  Status s = ParallelFor(8, 1, [&](size_t) -> Status {
    // uflip-lint: allow(thread-id) -- asserts jobs=1 runs inline on the caller thread
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok());
}

TEST(ParallelExecTest, AllUnitsRunAndLowestIndexErrorWins) {
  for (unsigned jobs : {1u, 4u}) {
    std::vector<std::atomic<bool>> ran(8);
    Status s = ParallelFor(8, jobs, [&](size_t i) -> Status {
      ran[i].store(true);
      if (i == 5) return Status::Internal("unit 5");
      if (i == 2) return Status::Internal("unit 2");
      return Status::Ok();
    });
    ASSERT_FALSE(s.ok()) << "jobs=" << jobs;
    // The lowest failing index is reported, independent of completion
    // order, so a failed parallel run prints the same error as serial.
    EXPECT_NE(s.ToString().find("unit 2"), std::string::npos)
        << "jobs=" << jobs << ": " << s.ToString();
    for (size_t i = 0; i < ran.size(); ++i) {
      EXPECT_TRUE(ran[i].load()) << "jobs=" << jobs << " unit " << i;
    }
  }
}

TEST(ParallelExecTest, ExceptionRethrownOnCallingThread) {
  EXPECT_THROW(
      {
        (void)ParallelFor(4, 4, [](size_t i) -> Status {
          if (i == 1) throw std::runtime_error("boom");
          return Status::Ok();
        });
      },
      std::runtime_error);
}

// ---------------------------------------------------------------------
// Determinism regression: jobs=1 vs jobs=4 must be byte-identical
// ---------------------------------------------------------------------

struct MiniUnit {
  RunStats stats;
  MetricSnapshot metrics;
  uint64_t ios = 0;
  uint64_t makespan_us = 0;
};

struct MiniSweepOutput {
  std::string rendered;
  std::string csv;
  std::string merged_metrics_json;
};

/// A shrunken ftl_compare sweep: 2 FTL cells x `reps` repetitions on a
/// 96MB device, each unit the real thing -- fresh prepared device,
/// per-rep seed streams, zipfian replay, metric registry -- folded in
/// canonical cell-major / rep-minor order.
MiniSweepOutput RunMiniSweep(unsigned jobs, uint32_t reps) {
  auto mtron = ProfileById("mtron");
  EXPECT_TRUE(mtron.ok());
  const std::vector<FtlKind> cells = {FtlKind::kPageMapping, FtlKind::kFast};
  const size_t unit_count = cells.size() * reps;

  auto produced =
      RunUnits<MiniUnit>(unit_count, jobs, [&](size_t i) -> StatusOr<MiniUnit> {
        DeviceProfile profile = *mtron;
        profile.ftl = cells[i / reps];
        uint32_t rep = static_cast<uint32_t>(i % reps);
        auto dev = MakeDeviceWithState(profile, 96ULL << 20, false, 0, rep);
        ZipfianTraceConfig cfg;
        cfg.capacity_bytes = 8ULL << 20;
        cfg.io_count = 300;
        cfg.seed = 1 + rep;
        ZipfianEventSource source(cfg);
        MetricRegistry registry;
        dev->AttachMetrics(&registry);
        ReplayOptions opts;
        opts.rescale_lba = true;
        opts.io_ignore = 0;
        uint64_t start_us = dev->clock()->NowUs();
        auto run = ExecuteTraceRun(dev.get(), &source, opts);
        if (!run.ok()) return run.status();
        MiniUnit out;
        out.stats = run->Stats();
        if (run->metrics) out.metrics = std::move(*run->metrics);
        out.ios = run->streamed_stats_all ? run->streamed_stats_all->count
                                          : run->samples.size();
        out.makespan_us = dev->clock()->NowUs() - start_us;
        return out;
      });
  EXPECT_TRUE(produced.ok()) << produced.status().ToString();

  GridReport grid({"ftl"});
  MetricSnapshot merged;
  for (size_t c = 0; c < cells.size(); ++c) {
    ReplicateSet set;
    GridCell cell;
    cell.keys = {cells[c] == FtlKind::kFast ? "fast" : "page"};
    cell.reps = reps;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      MiniUnit& u = (*produced)[c * reps + rep];
      set.Add(u.stats.Summary());
      merged.Merge(u.metrics);
      cell.ios += u.ios;
      cell.makespan_us += u.makespan_us;
    }
    ReplicateAggregate agg = set.Aggregate();
    cell.stats = RunStats::FromAggregate(agg);
    cell.mean_ci95_us = agg.mean_ci95_half;
    grid.Add(std::move(cell));
  }

  MiniSweepOutput out;
  out.rendered = grid.Render("mini sweep");
  out.csv = grid.ToCsv();
  out.merged_metrics_json = merged.ToJson();
  return out;
}

TEST(ParallelExecTest, MiniSweepByteIdenticalAcrossJobs) {
  MiniSweepOutput serial = RunMiniSweep(/*jobs=*/1, /*reps=*/3);
  MiniSweepOutput parallel = RunMiniSweep(/*jobs=*/4, /*reps=*/3);
  EXPECT_EQ(serial.rendered, parallel.rendered);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.merged_metrics_json, parallel.merged_metrics_json);
  // And the sweep did real work: the grid mentions both cells.
  EXPECT_NE(serial.rendered.find("fast"), std::string::npos);
  EXPECT_NE(serial.rendered.find("page"), std::string::npos);
  EXPECT_NE(serial.csv.find("reps"), std::string::npos);
}

}  // namespace
}  // namespace uflip
